"""Batch trial runner: many ``(graph, seed)`` executions, optionally parallel.

The paper's results are statistical -- every figure and table averages over
many trials -- so the measurement loop, not any single run, is the hot
path.  :func:`iter_trials` streams one :class:`RunResult` per seed, in seed
order; :func:`run_trials` is the list-returning convenience wrapper.  The
runner layers four optimizations over naive sequential calls:

* **engine dispatch** -- trials run on a vectorized engine
  (:mod:`repro.sim.fast_engine` for the sleeping algorithms,
  :mod:`repro.sim.fast_phased` for the four phased baselines) whenever it
  supports the configuration, falling back to the generator engine
  otherwise (``engine="auto"``); ``result="arrays"`` (or ``"auto"``)
  keeps each trial's statistics as numpy columns
  (:class:`repro.sim.array_result.ArrayRunResult`) instead of per-node
  dicts;
* **graph-structure reuse** -- consecutive seeds sharing one graph object
  normalize it once and share one
  :class:`repro.sim.fast_engine.GraphArrays`;
* **scratch reuse** -- sequential vectorized trials borrow their state
  arrays from one :class:`repro.sim.fast_engine.EngineScratch`, so a
  10^4-trial sweep does not reallocate a dozen node-sized buffers per
  trial;
* **streaming** -- graphs are built and results yielded one seed at a
  time, so a 10^4..10^7-node sweep holds one graph and one result in
  memory, not ``len(seeds)`` of each (at 10^7 the graph itself also
  builds in bounded transient memory: the v2 sampler streams its pair
  chunks through :meth:`GraphArrays.from_distinct_pair_chunks` instead
  of buffering them -- see docs/performance.md, "Scaling to 10^7").
  With ``n_jobs`` workers, seed chunks fan out over a
  :class:`concurrent.futures.ProcessPoolExecutor` with a bounded
  in-flight window; graphs cross process boundaries as plain adjacency
  dicts or as :class:`GraphArrays` whose edge arrays pickle without the
  (lazily rebuilt) adjacency dict.  If a pool cannot be started
  (restricted sandboxes), the runner degrades to sequential execution
  for the remaining seeds instead of failing; CI additionally pins
  ``n_jobs=2`` parity with the sequential path on a multi-core runner.
"""

from __future__ import annotations

import warnings
from collections import deque
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from ..profiling import phase
from . import fast_engine
from .array_result import ArrayRunResult, resolve_result_kind
from .fast_engine import (
    PHASED_ALGORITHMS,
    EngineScratch,
    GraphArrays,
    VectorizedEngine,
)
from .fast_phased import PhasedVectorizedEngine
from .metrics import RunResult
from .network import Simulator, normalize_graph
from .rng import DEFAULT_STREAM

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..plan import RunPlan

#: What one trial yields: the legacy dict-backed result or the
#: struct-of-arrays result, depending on ``result=``.
ResultLike = Union[RunResult, ArrayRunResult]

#: Engine names accepted throughout the package.
ENGINES = ("auto", "generators", "vectorized")


def resolve_engine(
    engine: str, algorithm: str, **constraints: Any
) -> str:
    """Map an engine request to the concrete engine that will run.

    ``"auto"`` selects ``"vectorized"`` exactly when
    :func:`repro.sim.fast_engine.supports` certifies the configuration
    against the capability registry
    (:data:`repro.sim.fast_engine.ENGINE_CAPABILITIES`); requesting
    ``"vectorized"`` for an unsupported configuration is an error rather
    than a silent behaviour change, and the error names the
    generator-only reason (an algorithm outside the registry, or a
    generator-only instrumentation feature) -- the support matrix is
    documented in ``docs/performance.md``.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known: {ENGINES}")
    if engine == "generators":
        return "generators"
    reason = fast_engine.unsupported_reason(algorithm, **constraints)
    if engine == "vectorized" and reason is not None:
        raise ValueError(
            f"vectorized engine cannot run algorithm={algorithm!r}: "
            f"{reason}; use engine='generators', or engine='auto' to fall "
            f"back to the generator engine automatically"
        )
    return "generators" if reason else "vectorized"


def make_vectorized_engine(
    graph: Any,
    algorithm: str,
    *,
    seed: Optional[int] = 0,
    max_rounds: Optional[int] = None,
    rng: str = DEFAULT_STREAM,
    scratch: Optional[EngineScratch] = None,
    result: str = "legacy",
    dtype: str = "default",
    **protocol_kwargs: Any,
):
    """The vectorized engine instance for ``algorithm`` (sleeping or phased).

    ``graph`` may be a prebuilt :class:`GraphArrays`; ``scratch`` an
    :class:`EngineScratch` shared across sequential constructions;
    ``result`` the result kind (:data:`repro.sim.array_result.RESULT_KINDS`)
    the engine's ``run()`` will build; ``dtype`` its column-dtype policy
    (:data:`repro.sim.array_result.DTYPE_KINDS`).

    Construction (per-node RNG seeding, eager coin matrices on the v1
    stream) is attributed to the ``engine`` phase under active profiling.
    """
    cls = (
        PhasedVectorizedEngine
        if algorithm in PHASED_ALGORITHMS
        else VectorizedEngine
    )
    with phase("engine"):
        return cls(
            graph,
            algorithm,
            seed=seed,
            max_rounds=max_rounds,
            rng=rng,
            scratch=scratch,
            result=result,
            dtype=dtype,
            **protocol_kwargs,
        )


def _run_one(
    adjacency: Optional[Dict[Any, Tuple[Any, ...]]],
    arrays: Optional[GraphArrays],
    algorithm: str,
    seed: Optional[int],
    engine: str,
    max_rounds: Optional[int],
    congest_bit_limit: Optional[int],
    protocol_kwargs: Dict[str, Any],
    rng: str = DEFAULT_STREAM,
    scratch: Optional[EngineScratch] = None,
    result: str = "legacy",
    dtype: str = "default",
) -> ResultLike:
    """One trial.  ``adjacency`` may be ``None`` for array-native graphs
    headed to a vectorized engine (the dict view stays unbuilt); the
    generator path materializes it lazily when it actually runs."""
    if engine == "vectorized":
        return make_vectorized_engine(
            arrays if arrays is not None else GraphArrays(adjacency),
            algorithm,
            seed=seed,
            max_rounds=max_rounds,
            rng=rng,
            scratch=scratch,
            result=result,
            dtype=dtype,
            **protocol_kwargs,
        ).run()
    from ..api import make_protocol_factory  # local: avoid import cycle

    if adjacency is None:
        adjacency = arrays.adjacency
    run = Simulator(
        adjacency,
        make_protocol_factory(algorithm, **protocol_kwargs),
        seed=seed,
        max_rounds=max_rounds,
        congest_bit_limit=congest_bit_limit,
        rng=rng,
    ).run()
    if resolve_result_kind(result, engine) == "arrays":
        return ArrayRunResult.from_run_result(run, dtype)
    return run


def run_planned_trial(
    graph: Any,
    plan: "RunPlan",
    seed: Optional[int],
    *,
    scratch: Optional[EngineScratch] = None,
) -> ResultLike:
    """One trial of ``plan`` on ``graph`` with ``seed``, reusing ``scratch``.

    The single-trial primitive the service worker tier rides: unlike
    :func:`run_trials` it takes a concrete graph (possibly a prebuilt
    :class:`GraphArrays`) plus a caller-owned :class:`EngineScratch`, so
    a long-running worker amortizes both graph normalization and state
    arrays across requests instead of per process-pool chunk.
    """
    resolved = plan.resolved_engine
    if isinstance(graph, GraphArrays):
        adjacency: Optional[Dict[Any, Tuple[Any, ...]]] = None
        arrays: Optional[GraphArrays] = graph
    else:
        adjacency = normalize_graph(graph)
        arrays = GraphArrays(adjacency) if resolved == "vectorized" else None
    return _run_one(
        adjacency,
        arrays,
        plan.algorithm,
        seed,
        resolved,
        plan.max_rounds,
        plan.congest_bit_limit,
        plan.protocol_dict(),
        plan.rng,
        scratch if resolved == "vectorized" else None,
        plan.result,
        plan.dtype,
    )


def _run_chunk(payload: Tuple) -> List[ResultLike]:
    """Process-pool task: one graph, a chunk of seeds.

    ``graph`` is either a plain adjacency dict or a :class:`GraphArrays`
    shipped with its lazy adjacency unbuilt -- for array-native sweeps
    the int32 edge arrays are both smaller on the wire and free to use on
    arrival (no per-worker re-normalization)."""
    (
        graph, algorithm, seeds, engine, max_rounds,
        congest_bit_limit, protocol_kwargs, rng, result, dtype,
    ) = payload
    if isinstance(graph, GraphArrays):
        adjacency, arrays = None, graph
    else:
        adjacency = graph
        arrays = GraphArrays(graph) if engine == "vectorized" else None
    scratch = EngineScratch() if engine == "vectorized" else None
    return [
        _run_one(
            adjacency, arrays, algorithm, seed, engine, max_rounds,
            congest_bit_limit, protocol_kwargs, rng, scratch, result, dtype,
        )
        for seed in seeds
    ]


def _iter_graphs(
    graph_factory: Any, seeds: Iterable[Optional[int]]
) -> Iterator[Tuple[Dict[Any, Tuple[Any, ...]], Optional[GraphArrays], Optional[int]]]:
    """Yield ``(normalized adjacency or None, prebuilt arrays or None,
    seed)`` lazily, one graph at a time.

    Consecutive seeds whose factory returns the *same object* (the
    shared-graph pattern, including non-callable ``graph_factory``) share
    one normalization.  A factory may return a prebuilt
    :class:`GraphArrays` to amortize edge-array construction across
    callers (e.g. ``build_table1`` measuring several algorithms on the
    same graphs, or the array-native samplers in
    :mod:`repro.graphs.arrays`); for those the adjacency slot is ``None``
    and the dict view stays unbuilt unless the generator engine runs.
    """
    factory: Callable[[Optional[int]], Any] = (
        graph_factory if callable(graph_factory) else lambda seed: graph_factory
    )
    prev_graph: Any = None
    seen_one = False
    prev_adjacency: Optional[Dict[Any, Tuple[Any, ...]]] = None
    prev_arrays: Optional[GraphArrays] = None
    for seed in seeds:
        graph = factory(seed)
        if not seen_one or graph is not prev_graph:
            if isinstance(graph, GraphArrays):
                # The dict view stays unbuilt: array-native graphs headed
                # to a vectorized engine never need it, and the generator
                # path materializes it lazily in _run_one.
                prev_arrays = graph
                prev_adjacency = None
            else:
                prev_arrays = None
                prev_adjacency = normalize_graph(graph)
            prev_graph = graph
            seen_one = True
        yield prev_adjacency, prev_arrays, seed


def iter_trials(
    graph_factory: Any,
    algorithm: str = "fast-sleeping",
    *,
    seeds: Iterable[Optional[int]] = range(10),
    plan: Optional["RunPlan"] = None,
    n_jobs: Optional[int] = None,
    engine: str = "auto",
    rng: str = DEFAULT_STREAM,
    result: str = "legacy",
    dtype: str = "default",
    max_rounds: Optional[int] = None,
    congest_bit_limit: Optional[int] = None,
    **protocol_kwargs: Any,
) -> Iterator[ResultLike]:
    """Stream one result per seed, in seed order.

    This is the memory-bounded core of :func:`run_trials`: graphs are
    built lazily and each result is handed to the caller before the next
    trial starts, so sweeps can aggregate 10^4-node runs without ever
    holding more than one of them.

    Parameters
    ----------
    graph_factory:
        Either a callable ``seed -> graph`` (fresh graph per trial) or a
        single graph object shared by every trial.  A factory may return
        a prebuilt :class:`GraphArrays` (e.g. from
        :mod:`repro.graphs.arrays`), which skips graph normalization
        entirely on the vectorized path.
    algorithm:
        Name from :func:`repro.api.algorithm_names`.
    seeds:
        Master seeds, one trial each (keyword-only).
    plan:
        A pre-validated :class:`repro.plan.RunPlan`; mutually exclusive
        with the loose knob keywords below (``seeds`` stays separate --
        it is the trial grid, not a configuration knob).
    n_jobs:
        ``None`` or ``1`` runs sequentially in-process; ``> 1`` uses that
        many worker processes.  ``0``/negative values are rejected (pass
        ``n_jobs=os.cpu_count()`` explicitly for one worker per CPU).
    engine:
        ``"auto"`` (default), ``"generators"``, or ``"vectorized"``.
    rng:
        Random-stream format: ``"pernode"`` (v1, default) or ``"batched"``
        (v2); see :mod:`repro.sim.rng`.
    result:
        ``"legacy"`` (default) yields :class:`RunResult`; ``"arrays"``
        yields :class:`repro.sim.array_result.ArrayRunResult` (converted
        from the legacy result on the generator engine); ``"auto"`` picks
        arrays exactly on the vectorized engine.
    dtype:
        Result column-dtype policy: ``"default"`` (bit-identical int64
        columns) or ``"narrow"`` (smallest exact dtype per column); see
        :data:`repro.sim.array_result.DTYPE_KINDS`.
    protocol_kwargs:
        Forwarded to the protocol (``coin_bias=``, ``greedy_constant=``,
        ``depth=``, ``max_phases=``).
    """
    from ..plan import ensure_plan

    plan = ensure_plan(
        "iter_trials",
        plan,
        given=dict(
            algorithm=algorithm,
            n_jobs=n_jobs,
            engine=engine,
            rng=rng,
            result=result,
            dtype=dtype,
            max_rounds=max_rounds,
            congest_bit_limit=congest_bit_limit,
            protocol_kwargs=protocol_kwargs,
        ),
        defaults=dict(
            algorithm="fast-sleeping",
            n_jobs=None,
            engine="auto",
            rng=DEFAULT_STREAM,
            result="legacy",
            dtype="default",
            max_rounds=None,
            congest_bit_limit=None,
            protocol_kwargs={},
        ),
    )
    # Plan construction already validated names and combinations; resolve
    # the concrete engine/result once and iterate.
    return _iter_trials_planned(graph_factory, seeds, plan)


def _iter_trials_planned(
    graph_factory: Any,
    seeds: Iterable[Optional[int]],
    plan: "RunPlan",
) -> Iterator[ResultLike]:
    """The generator core behind :func:`iter_trials` (validation happens
    eagerly in the wrapper, not on first ``next()``)."""
    algorithm = plan.algorithm
    max_rounds = plan.max_rounds
    congest_bit_limit = plan.congest_bit_limit
    rng = plan.rng
    result = plan.result
    dtype = plan.dtype
    protocol_kwargs = plan.protocol_dict()
    seed_list = list(seeds)
    if not seed_list:
        return
    resolved = plan.resolved_engine
    jobs = _effective_jobs(plan.n_jobs, len(seed_list))
    if jobs > 1:
        from concurrent.futures.process import BrokenProcessPool

        done = 0
        try:
            chunks = _iter_chunks(
                _iter_graphs(graph_factory, seed_list), algorithm,
                resolved, max_rounds, congest_bit_limit, protocol_kwargs,
                rng, result, dtype,
                target=max(1, len(seed_list) // (jobs * 4) or 1),
            )
            for one in _iter_parallel(chunks, jobs):
                done += 1
                yield one
            return
        except (OSError, ImportError, BrokenProcessPool) as exc:
            # Pool could not start, or its workers were killed before
            # producing results (sandboxes commonly allow the former and
            # forbid the latter) -- degrade to sequential execution for
            # whatever seeds have not been yielded yet.
            warnings.warn(
                f"process pool unavailable ({exc}); running the remaining "
                f"{len(seed_list) - done} trial(s) sequentially",
                RuntimeWarning,
                stacklevel=2,
            )
            seed_list = seed_list[done:]

    arrays: Optional[GraphArrays] = None
    arrays_for: Any = None
    scratch = EngineScratch() if resolved == "vectorized" else None
    for adjacency, prebuilt, seed in _iter_graphs(graph_factory, seed_list):
        if prebuilt is not None:
            arrays, arrays_for = prebuilt, prebuilt
        elif resolved == "vectorized" and adjacency is not arrays_for:
            arrays = GraphArrays(adjacency)
            arrays_for = adjacency
        yield _run_one(
            adjacency,
            arrays if (resolved == "vectorized" or prebuilt is not None)
            else None,
            algorithm, seed, resolved, max_rounds,
            congest_bit_limit, protocol_kwargs, rng, scratch, result, dtype,
        )


def run_trials(
    graph_factory: Any,
    algorithm: str = "fast-sleeping",
    *,
    seeds: Iterable[Optional[int]] = range(10),
    plan: Optional["RunPlan"] = None,
    n_jobs: Optional[int] = None,
    engine: str = "auto",
    rng: str = DEFAULT_STREAM,
    result: str = "legacy",
    dtype: str = "default",
    max_rounds: Optional[int] = None,
    congest_bit_limit: Optional[int] = None,
    **protocol_kwargs: Any,
) -> List[ResultLike]:
    """Run ``algorithm`` once per seed; results come back in seed order.

    The list-returning wrapper around :func:`iter_trials` (same
    parameters); prefer the iterator for large sweeps.
    """
    return list(
        iter_trials(
            graph_factory, algorithm, seeds=seeds, plan=plan,
            n_jobs=n_jobs, engine=engine, rng=rng, result=result,
            dtype=dtype, max_rounds=max_rounds,
            congest_bit_limit=congest_bit_limit, **protocol_kwargs,
        )
    )


def _effective_jobs(n_jobs: Optional[int], n_tasks: int) -> int:
    # RunPlan validation guarantees n_jobs is None or >= 1 by the time
    # it reaches here (0/negative requests are rejected at construction
    # with an error naming the fix).
    if n_jobs is None or n_jobs == 1:
        return 1
    return min(n_jobs, n_tasks)


def _iter_chunks(
    graph_seed_iter: Iterator[
        Tuple[
            Optional[Dict[Any, Tuple[Any, ...]]],
            Optional[GraphArrays],
            Optional[int],
        ]
    ],
    algorithm: str,
    engine: str,
    max_rounds: Optional[int],
    congest_bit_limit: Optional[int],
    protocol_kwargs: Dict[str, Any],
    rng: str,
    result: str,
    dtype: str,
    target: int,
) -> Iterator[Tuple]:
    """Chunk runs of consecutive seeds that share a graph, so workers
    amortize :class:`GraphArrays` construction; aim for a few chunks per
    worker (``target`` seeds each).  The chunk carries whichever graph
    representation the factory produced: a plain adjacency dict, or a
    :class:`GraphArrays` whose lazy adjacency stays unbuilt (pickling the
    int32 edge arrays beats materializing and pickling a 10^5-entry
    dict)."""
    chunk_graph: Any = None
    chunk_seeds: List[Optional[int]] = []
    for adjacency, arrays, seed in graph_seed_iter:
        graph = arrays if arrays is not None else adjacency
        if chunk_seeds and (
            graph is not chunk_graph or len(chunk_seeds) >= target
        ):
            yield (
                chunk_graph, algorithm, chunk_seeds, engine, max_rounds,
                congest_bit_limit, protocol_kwargs, rng, result, dtype,
            )
            chunk_seeds = []
        chunk_graph = graph
        chunk_seeds.append(seed)
    if chunk_seeds:
        yield (
            chunk_graph, algorithm, chunk_seeds, engine, max_rounds,
            congest_bit_limit, protocol_kwargs, rng, result, dtype,
        )


#: In-flight chunks per worker in the bounded submission window.  Two per
#: worker keeps every worker fed (one running, one queued) while bounding
#: driver-side memory to ``2 * jobs`` pending chunk results; the
#: ``BENCH_sweep_scaling.json`` measurement showed no throughput gain from
#: deeper windows (trial wall time dominates submission latency), so the
#: minimum that avoids worker starvation is the default.
INFLIGHT_CHUNKS_PER_WORKER = 2


def _iter_parallel(chunks: Iterator[Tuple], jobs: int) -> Iterator[ResultLike]:
    """Fan chunks out over a process pool with a bounded in-flight window,
    yielding results in submission (= seed) order."""
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        pending: deque = deque()
        for chunk in chunks:
            pending.append(pool.submit(_run_chunk, chunk))
            while len(pending) >= jobs * INFLIGHT_CHUNKS_PER_WORKER:
                for result in pending.popleft().result():
                    yield result
        while pending:
            for result in pending.popleft().result():
                yield result

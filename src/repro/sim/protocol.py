"""Protocol base class.

A protocol describes the behaviour of a single node as a generator: the body
of :meth:`Protocol.run` is a direct transcription of per-node pseudocode.
See :mod:`repro.sim.actions` for the yield vocabulary.

Example -- a node that is awake for one round, says hello to every neighbor,
then sleeps five rounds and terminates::

    class Hello(Protocol):
        def run(self, ctx):
            inbox = yield SendAndReceive({u: "hi" for u in ctx.neighbors})
            self.heard = sorted(inbox)
            yield Sleep(5)

        def output(self):
            return self.heard
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Generator, Optional

from .actions import Action
from .context import NodeContext


class Protocol(ABC):
    """Behaviour of one node, written as a generator."""

    @abstractmethod
    def run(self, ctx: NodeContext) -> Generator[Action, Any, None]:
        """Yield actions; return to terminate the node."""

    def output(self) -> Any:
        """The node's committed output after the run (``None`` by default)."""
        return None


class MISProtocol(Protocol):
    """Base class for MIS protocols.

    Subclasses maintain ``self.in_mis`` with the paper's three-valued
    convention: ``None`` (unknown), ``True`` (in the MIS), ``False`` (not in
    the MIS).  Once set to a boolean it must never change.
    """

    def __init__(self) -> None:
        self.in_mis: Optional[bool] = None
        #: the mechanism that fixed ``in_mis`` (e.g. ``"isolated"``,
        #: ``"eliminated"``, ``"base_greedy_join"``), for analyses.
        self.decided_how: Optional[str] = None

    def output(self) -> Optional[bool]:
        return self.in_mis

    def _decide(self, ctx: NodeContext, value: bool, how: str) -> None:
        """Set ``in_mis`` exactly once and record the decision."""
        if self.in_mis is not None:
            raise AssertionError(
                f"node {ctx.node_id} re-deciding in_mis "
                f"({self.in_mis} -> {value} via {how})"
            )
        self.in_mis = value
        self.decided_how = how
        ctx.report_decision(value)
        ctx.trace("mis_decision", value=value, how=how)

"""Exception hierarchy for the sleeping-model simulator.

Every error raised by :mod:`repro.sim` derives from :class:`SimulationError`
so callers can catch simulator problems with a single ``except`` clause while
still distinguishing the specific failure mode when they need to.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator errors."""


class ProtocolError(SimulationError):
    """A protocol violated the node API.

    Raised when a protocol yields an unknown action, sends to a non-neighbor,
    sleeps for a non-integer duration, or produces a payload that cannot be
    encoded as a CONGEST message.
    """


class CongestViolationError(SimulationError):
    """A message exceeded the configured CONGEST bit budget."""

    def __init__(self, sender: int, recipient: int, bits: int, limit: int):
        self.sender = sender
        self.recipient = recipient
        self.bits = bits
        self.limit = limit
        super().__init__(
            f"message from {sender} to {recipient} is {bits} bits, "
            f"exceeding the CONGEST limit of {limit} bits"
        )


class MaxRoundsExceededError(SimulationError):
    """The simulation did not terminate within ``max_rounds`` rounds."""

    def __init__(self, max_rounds: int, unfinished: int):
        self.max_rounds = max_rounds
        self.unfinished = unfinished
        super().__init__(
            f"simulation exceeded {max_rounds} rounds with "
            f"{unfinished} node(s) still unfinished"
        )

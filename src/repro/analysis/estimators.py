"""Curve fitting and growth classification for scaling experiments.

The benchmarks do not try to match the paper's absolute constants (our
substrate is a simulator, not the authors' abstract model with hidden
constants); they check the *shape* of each bound: node-averaged awake stays
flat, worst-case awake grows like ``log n``, Algorithm 1's rounds grow like
``n^3``, Algorithm 2's like a polylog.  These helpers turn (n, y) series
into those judgements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


@dataclass(frozen=True)
class Fit:
    """A fitted model ``y ~ model(n)`` with its R^2."""

    model: str
    params: tuple
    r_squared: float

    def __str__(self) -> str:
        params = ", ".join(f"{p:.4g}" for p in self.params)
        return f"{self.model}({params}) R2={self.r_squared:.4f}"


def _r_squared(ys: np.ndarray, predicted: np.ndarray) -> float:
    residual = float(np.sum((ys - predicted) ** 2))
    total = float(np.sum((ys - np.mean(ys)) ** 2))
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return 1.0 - residual / total


def fit_constant(ns: Sequence[float], ys: Sequence[float]) -> Fit:
    """Fit ``y = c``."""
    ys_arr = np.asarray(ys, dtype=float)
    c = float(np.mean(ys_arr))
    return Fit("constant", (c,), _r_squared(ys_arr, np.full_like(ys_arr, c)))


def fit_logarithmic(ns: Sequence[float], ys: Sequence[float]) -> Fit:
    """Fit ``y = a + b log2 n`` by least squares."""
    ns_arr = np.asarray(ns, dtype=float)
    ys_arr = np.asarray(ys, dtype=float)
    design = np.column_stack([np.ones_like(ns_arr), np.log2(ns_arr)])
    coeffs, *_ = np.linalg.lstsq(design, ys_arr, rcond=None)
    predicted = design @ coeffs
    return Fit(
        "logarithmic", (float(coeffs[0]), float(coeffs[1])),
        _r_squared(ys_arr, predicted),
    )


def fit_power(ns: Sequence[float], ys: Sequence[float]) -> Fit:
    """Fit ``y = c * n^alpha`` by log-log least squares (requires y > 0)."""
    ns_arr = np.asarray(ns, dtype=float)
    ys_arr = np.asarray(ys, dtype=float)
    if np.any(ys_arr <= 0):
        raise ValueError("power fit requires strictly positive y values")
    design = np.column_stack([np.ones_like(ns_arr), np.log(ns_arr)])
    coeffs, *_ = np.linalg.lstsq(design, np.log(ys_arr), rcond=None)
    predicted = np.exp(design @ coeffs)
    return Fit(
        "power", (float(math.exp(coeffs[0])), float(coeffs[1])),
        _r_squared(ys_arr, predicted),
    )


def fit_polylog(ns: Sequence[float], ys: Sequence[float]) -> Fit:
    """Fit ``y = c * (log2 n)^beta`` by log-log least squares."""
    ns_arr = np.asarray(ns, dtype=float)
    ys_arr = np.asarray(ys, dtype=float)
    if np.any(ys_arr <= 0):
        raise ValueError("polylog fit requires strictly positive y values")
    logs = np.log(np.log2(ns_arr))
    design = np.column_stack([np.ones_like(ns_arr), logs])
    coeffs, *_ = np.linalg.lstsq(design, np.log(ys_arr), rcond=None)
    predicted = np.exp(design @ coeffs)
    return Fit(
        "polylog", (float(math.exp(coeffs[0])), float(coeffs[1])),
        _r_squared(ys_arr, predicted),
    )


def growth_factor(ns: Sequence[float], ys: Sequence[float]) -> float:
    """``y(n_max) / y(n_min)`` -- a scale-free flatness measure.

    A constant-bound quantity keeps this near 1 while ``n`` grows by orders
    of magnitude; a logarithmic one grows like ``log(n_max)/log(n_min)``.
    """
    pairs = sorted(zip(ns, ys))
    y_first = pairs[0][1]
    y_last = pairs[-1][1]
    if y_first == 0:
        return float("inf") if y_last > 0 else 1.0
    return y_last / y_first


def classify_growth(ns: Sequence[float], ys: Sequence[float]) -> str:
    """Best-R^2 label among constant / logarithmic / power.

    Constant wins outright when the series' spread is small relative to its
    mean (R^2 comparisons are meaningless for near-flat data).
    """
    ys_arr = np.asarray(ys, dtype=float)
    mean = float(np.mean(ys_arr))
    if mean == 0.0:
        return "constant"
    spread = float(np.max(ys_arr) - np.min(ys_arr))
    if spread / mean < 0.25:
        return "constant"
    candidates: Dict[str, Fit] = {
        "logarithmic": fit_logarithmic(ns, ys),
    }
    if np.all(ys_arr > 0):
        candidates["power"] = fit_power(ns, ys)
    best = max(candidates, key=lambda name: candidates[name].r_squared)
    if candidates[best].r_squared < 0.5:
        return "irregular"
    if best == "power" and abs(candidates[best].params[1]) < 0.15:
        return "constant"
    return best

"""The deferred-decision process of Lemma 6, replayable on real runs.

The Pruning Lemma's proof fixes the coins ``X_k`` of a call's participants
in a specific order rather than up front: walk the *evaluation sequence*
(decreasing ``(k-1)``-rank); the first node whose coin is unfixed gets it
fixed (**sequence-fixed**), and if that coin is 1, all of its still-unfixed
neighbors get theirs fixed too (**neighbor-fixed**).  Lemma 6 then asserts:

1. a sequence-fixed node with ``X_k = 1`` joins the MIS *before the
   synchronization step* of this call (i.e. it decides during the first
   isolated-node detection or inside the left recursion);
2. a neighbor-fixed node sets ``inMIS = false`` *before the second isolated
   node detection* (i.e. it is eliminated at this level's synchronization
   step or already inside the left recursion).

Because the process only changes the *order* in which coins are revealed --
not their values -- we can replay it on a finished run using the actual
drawn bits and check both statements against the recorded decisions.

Scope: the replay is exact for **Algorithm 1**, whose sub-calls resolve
the lexicographically-first MIS of the drawn bit ranks all the way down.
For **Algorithm 2** the statements hold only *in distribution* at the
truncation boundary: a greedy base case draws fresh ranks, so its MIS
matches the X-bit continuation distributionally (the paper's Corollary 1
argument) but not samplewise -- replaying Lemma 6 against a run whose
sequence-fixed nodes landed in base cases can and does report violations.
That is expected, and the test suite pins both behaviours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from ..core.ranks import evaluation_sequence
from ..sim.metrics import RunResult
from .lemmas import aggregate_calls, decision_site

SEQUENCE_FIXED = "sequence"
NEIGHBOR_FIXED = "neighbor"


@dataclass
class DeferredOutcome:
    """Labels assigned by one replay of the deferred-decision process."""

    path: str
    k: int
    order: List[int]
    labels: Dict[int, str]

    def sequence_fixed(self) -> Set[int]:
        return {v for v, l in self.labels.items() if l == SEQUENCE_FIXED}

    def neighbor_fixed(self) -> Set[int]:
        return {v for v, l in self.labels.items() if l == NEIGHBOR_FIXED}


def replay_deferred_decisions(
    result: RunResult, path: str
) -> DeferredOutcome:
    """Replay the process for the call at ``path`` of a finished run."""
    calls = aggregate_calls(result)
    if path not in calls:
        raise KeyError(f"no call with path {path!r} in this run")
    agg = calls[path]
    if agg.k < 1:
        raise ValueError(f"call {path!r} is a base case (k=0)")
    members = agg.members
    bits_of = {v: result.protocols[v].x_bits for v in members}
    order = evaluation_sequence(members, bits_of, agg.k)

    labels: Dict[int, str] = {}
    for v in order:
        if v in labels:
            continue
        labels[v] = SEQUENCE_FIXED
        if bits_of[v][agg.k - 1] == 1:  # X_k(v) == 1
            for w in result.adjacency[v]:
                if w in members and w not in labels:
                    labels[w] = NEIGHBOR_FIXED
    return DeferredOutcome(path=path, k=agg.k, order=order, labels=labels)


def verify_lemma6(result: RunResult, path: str) -> List[str]:
    """Check both Lemma 6 statements for one call; return violations."""
    outcome = replay_deferred_decisions(result, path)
    k = outcome.k
    violations: List[str] = []
    for v in outcome.order:
        protocol = result.protocols[v]
        x_k = protocol.x_bits[k - 1]
        site = decision_site(protocol)
        if site is None:
            violations.append(f"node {v} never decided")
            continue
        decided_path, how = site

        if outcome.labels[v] == SEQUENCE_FIXED and x_k == 1:
            # Statement 1: joins the MIS before the synchronization step.
            if protocol.in_mis is not True:
                violations.append(
                    f"statement 1: node {v} sequence-fixed with X_k=1 "
                    f"but in_mis={protocol.in_mis}"
                )
            elif not (
                (decided_path == path and how == "isolated")
                or decided_path.startswith(path + "L")
            ):
                violations.append(
                    f"statement 1: node {v} joined via {how!r} at "
                    f"{decided_path!r}, not before the sync step of {path!r}"
                )
        elif outcome.labels[v] == NEIGHBOR_FIXED:
            # Statement 2: eliminated before the second isolated detection.
            if protocol.in_mis is not False:
                violations.append(
                    f"statement 2: node {v} neighbor-fixed "
                    f"but in_mis={protocol.in_mis}"
                )
            elif not (
                (decided_path == path and how == "eliminated")
                or decided_path.startswith(path + "L")
            ):
                violations.append(
                    f"statement 2: node {v} decided via {how!r} at "
                    f"{decided_path!r}, not before the second detection "
                    f"of {path!r}"
                )
    return violations


def verify_lemma6_everywhere(result: RunResult) -> List[str]:
    """Check Lemma 6 for every internal call of a run."""
    violations: List[str] = []
    for path, agg in aggregate_calls(result).items():
        if agg.k >= 1:
            violations.extend(verify_lemma6(result, path))
    return violations

"""Empirical validation of the paper's per-call lemmas.

Both sleeping protocols record a :class:`repro.core.sleeping_mis.CallRecord`
for every recursive call each node participates in.  This module aggregates
those per-node records into the per-call quantities the analysis section
reasons about:

* ``U`` -- the participant set of a call (Definition: the nodes that call
  ``SleepingMISRecursive`` together);
* ``L`` / ``R`` -- the subsets entering the left/right recursion
  (Lemmas 2 and 3: ``E|L| <= |U|/2`` and ``E|R| <= |U|/4``);
* ``Z_k`` -- total participation per recursion parameter ``k``
  (Lemma 7: ``E[Z_{K-i}] <= (3/4)^i n``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ..sim.metrics import RunResult


@dataclass
class CallAggregate:
    """All participants' views of one call, merged."""

    path: str
    k: int
    members: Set[int] = field(default_factory=set)
    left: Set[int] = field(default_factory=set)
    right: Set[int] = field(default_factory=set)
    start_round: Optional[int] = None
    end_round: Optional[int] = None
    #: node -> decision kind made at this level, for nodes that decided here.
    decisions: Dict[int, str] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def left_fraction(self) -> float:
        """|L| / |U| -- Lemma 2 bounds its expectation by 1/2."""
        return len(self.left) / len(self.members) if self.members else 0.0

    @property
    def right_fraction(self) -> float:
        """|R| / |U| -- the Pruning Lemma bounds its expectation by 1/4."""
        return len(self.right) / len(self.members) if self.members else 0.0


def aggregate_calls(result: RunResult) -> Dict[str, CallAggregate]:
    """Merge every node's call records into per-call aggregates.

    Requires the run to have used a protocol with ``record_calls=True``
    (``SleepingMIS`` or ``FastSleepingMIS``).
    """
    calls: Dict[str, CallAggregate] = {}
    for v, protocol in result.protocols.items():
        records = getattr(protocol, "calls", None)
        if records is None:
            raise TypeError(
                f"protocol of node {v!r} has no call records; "
                f"use SleepingMIS/FastSleepingMIS with record_calls=True"
            )
        for rec in records:
            agg = calls.get(rec.path)
            if agg is None:
                agg = CallAggregate(path=rec.path, k=rec.k)
                calls[rec.path] = agg
            agg.members.add(v)
            if rec.went_left:
                agg.left.add(v)
            if rec.went_right:
                agg.right.add(v)
            if rec.decided is not None:
                agg.decisions[v] = rec.decided
            if rec.start_round is not None:
                agg.start_round = (
                    rec.start_round
                    if agg.start_round is None
                    else min(agg.start_round, rec.start_round)
                )
            if rec.end_round is not None:
                agg.end_round = (
                    rec.end_round
                    if agg.end_round is None
                    else max(agg.end_round, rec.end_round)
                )
    return calls


def level_totals(result: RunResult) -> Dict[int, int]:
    """``Z_k``: number of (node, call) participations per parameter ``k``."""
    totals: Dict[int, int] = {}
    for agg in aggregate_calls(result).values():
        totals[agg.k] = totals.get(agg.k, 0) + agg.size
    return totals


@dataclass
class PruningSummary:
    """Aggregated left/right participation fractions over many calls."""

    calls: int
    total_members: int
    total_left: int
    total_right: int

    @property
    def left_fraction(self) -> float:
        """Pooled |L| / |U| over all internal calls (Lemma 2: <= 1/2)."""
        return self.total_left / self.total_members if self.total_members else 0.0

    @property
    def right_fraction(self) -> float:
        """Pooled |R| / |U| over all internal calls (Lemma 3: <= 1/4)."""
        return self.total_right / self.total_members if self.total_members else 0.0

    @property
    def recursion_fraction(self) -> float:
        """Pooled (|L| + |R|) / |U| (the 3/4 envelope of Lemma 7)."""
        if not self.total_members:
            return 0.0
        return (self.total_left + self.total_right) / self.total_members


def pruning_summary(results: Iterable[RunResult]) -> PruningSummary:
    """Pool per-call participation over all internal calls of many runs.

    Only calls with ``k >= 1`` contribute (the lemmas are stated for calls
    that actually recurse).
    """
    calls = 0
    members = 0
    left = 0
    right = 0
    for result in results:
        for agg in aggregate_calls(result).values():
            if agg.k < 1:
                continue
            calls += 1
            members += agg.size
            left += len(agg.left)
            right += len(agg.right)
    return PruningSummary(
        calls=calls,
        total_members=members,
        total_left=left,
        total_right=right,
    )


def level_decay_table(
    results: Iterable[RunResult],
) -> List[Dict[str, float]]:
    """Mean ``Z_{K-i}`` per depth ``i`` versus the ``(3/4)^i n`` envelope.

    Returns one row per depth with keys ``depth``, ``mean_z``, and
    ``envelope``.  Depths are aligned by each run's own top level ``K``.
    """
    per_depth: Dict[int, List[float]] = {}
    envelopes: Dict[int, List[float]] = {}
    count = 0
    for result in results:
        count += 1
        totals = level_totals(result)
        if not totals:
            continue
        top = max(totals)
        for k, z in totals.items():
            depth = top - k
            per_depth.setdefault(depth, []).append(z)
            envelopes.setdefault(depth, []).append((0.75**depth) * result.n)
    rows = []
    for depth in sorted(per_depth):
        values = per_depth[depth]
        # Calls absent from a run contribute zero participation.
        mean_z = sum(values) / count if count else 0.0
        envelope = sum(envelopes[depth]) / len(envelopes[depth])
        rows.append(
            {"depth": depth, "mean_z": mean_z, "envelope": envelope}
        )
    return rows


def decision_site(protocol) -> Optional[tuple]:
    """The ``(path, kind)`` of the call at which this node decided."""
    for rec in getattr(protocol, "calls", ()):
        if rec.decided is not None:
            return rec.path, rec.decided
    return None


def decision_counts(result: RunResult) -> Dict[str, int]:
    """How many nodes decided by each mechanism (isolated, eliminated, ...)."""
    counts: Dict[str, int] = {}
    for protocol in result.protocols.values():
        site = decision_site(protocol)
        kind = site[1] if site else "undecided"
        counts[kind] = counts.get(kind, 0) + 1
    return counts

"""One-command reproduction report.

``build_report`` re-measures the paper's headline claims at a configurable
scale and assembles a markdown document: Table 1, the O(1) node-averaged
awake sweep, worst-case awake fits, the pruning-lemma fractions, the
Corollary 1 check, and the awake-time distribution.  The CLI exposes it as
``repro-mis report``.
"""

from __future__ import annotations

from typing import List, Sequence

from ..api import solve_mis
from ..graphs.generators import make_family_graph
from .complexity import mean_by_size, sweep
from .distribution import awake_quantiles, survival_curve
from .estimators import classify_growth, fit_logarithmic, growth_factor
from .lemmas import pruning_summary
from .lexfirst import check_lexicographically_first
from .tables import Table, build_table1


def build_report(
    sizes: Sequence[int] = (64, 128, 256),
    family: str = "gnp-sparse",
    trials: int = 2,
    seed0: int = 0,
) -> str:
    """Assemble the full markdown reproduction report."""
    sections: List[str] = [
        "# Reproduction report",
        "",
        f"Graph family `{family}`, sizes {list(sizes)}, "
        f"{trials} trial(s) per point, seed base {seed0}.",
        "",
        build_table1(
            sizes=sizes, family=family, trials=trials, seed0=seed0
        ).to_markdown(),
        "",
        _awake_section(sizes, family, trials, seed0),
        "",
        _worst_case_section(sizes, family, trials, seed0),
        "",
        _pruning_section(sizes, family, seed0),
        "",
        _lexfirst_section(max(sizes), family, seed0),
        "",
        _distribution_section(max(sizes), family, seed0),
    ]
    return "\n".join(sections)


def _awake_section(sizes, family, trials, seed0) -> str:
    table = Table(
        title="Node-averaged awake complexity (paper: O(1) for sleeping algorithms)",
        headers=["algorithm"]
        + [f"n={n}" for n in sizes]
        + ["growth", "class"],
    )
    for algorithm in ("sleeping", "fast-sleeping", "luby"):
        rows = sweep(algorithm, family, sizes=sizes, trials=trials, seed0=seed0)
        ns, means = mean_by_size(rows, "node_averaged_awake")
        table.add_row(
            algorithm,
            *[f"{m:.2f}" for m in means],
            f"{growth_factor(ns, means):.2f}x",
            classify_growth(ns, means),
        )
    return table.to_markdown()


def _worst_case_section(sizes, family, trials, seed0) -> str:
    table = Table(
        title="Worst-case awake complexity (paper: O(log n))",
        headers=["algorithm"] + [f"n={n}" for n in sizes] + ["log fit"],
    )
    for algorithm in ("sleeping", "fast-sleeping"):
        rows = sweep(algorithm, family, sizes=sizes, trials=trials, seed0=seed0)
        ns, means = mean_by_size(rows, "worst_case_awake")
        table.add_row(
            algorithm, *[f"{m:.1f}" for m in means], str(fit_logarithmic(ns, means))
        )
    return table.to_markdown()


def _pruning_section(sizes, family, seed0) -> str:
    results = []
    for n in sizes:
        graph = make_family_graph(family, n, seed=seed0 + n)
        results.append(
            solve_mis(graph, algorithm="sleeping", seed=seed0 + n)
        )
    summary = pruning_summary(results)
    return "\n".join(
        [
            "### Pruning Lemma (Lemmas 2-3)",
            "",
            f"* pooled |L|/|U| = {summary.left_fraction:.3f} (bound 0.5)",
            f"* pooled |R|/|U| = {summary.right_fraction:.3f} (bound 0.25)",
            f"* calls measured: {summary.calls}",
        ]
    )


def _lexfirst_section(n, family, seed0) -> str:
    lines = ["### Corollary 1 (lexicographically-first MIS)", ""]
    for algorithm in ("sleeping", "fast-sleeping"):
        matches = 0
        checks = 3
        for seed in range(checks):
            graph = make_family_graph(family, n, seed=seed0 + seed)
            result = solve_mis(graph, algorithm=algorithm, seed=seed0 + seed)
            if check_lexicographically_first(result):
                matches += 1
        lines.append(f"* {algorithm}: {matches}/{checks} exact matches")
    return "\n".join(lines)


def _distribution_section(n, family, seed0) -> str:
    graph = make_family_graph(family, n, seed=seed0)
    result = solve_mis(graph, algorithm="sleeping", seed=seed0)
    quantiles = awake_quantiles(result, qs=(0.5, 0.9, 0.99, 1.0))
    curve = survival_curve([result], thresholds=[3, 9, 15, 21])
    lines = [
        "### Awake-time distribution A_v (Algorithm 1, largest size)",
        "",
        f"* median {quantiles[0.5]:.0f}, P90 {quantiles[0.9]:.0f}, "
        f"P99 {quantiles[0.99]:.0f}, max {quantiles[1.0]:.0f}",
        "* survival P[A_v >= t]: "
        + ", ".join(f"t={t}: {f:.3f}" for t, f in curve),
    ]
    return "\n".join(lines)

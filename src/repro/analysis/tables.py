"""Table rendering and the measured reproduction of the paper's Table 1.

Table 1 of the paper summarizes four complexity measures for prior MIS
algorithms versus Algorithms 1 and 2.  :func:`build_table1` re-creates it
with *measured* values: each cell is the mean over several seeded trials of
the corresponding measure, with the paper's asymptotic claim alongside.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..graphs.arrays import DEFAULT_GRAPH_RNG, make_family
from ..sim.batch import iter_trials
from ..sim.fast_engine import GraphArrays
from .complexity import Trial, summarize, trial_from_result, trial_seeds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..plan import RunPlan


@dataclass
class Table:
    """A minimal text/markdown table."""

    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(self.headers)}"
            )
        self.rows.append(row)

    def to_text(self) -> str:
        widths = [
            max(len(self.headers[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines = [self.title, ""]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(c.ljust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)


#: The paper's asymptotic claims (Table 1), keyed by our algorithm names.
PAPER_CLAIMS: Dict[str, Dict[str, str]] = {
    "abi": {
        "node_averaged_awake": "n/a (never sleeps)",
        "worst_case_awake": "n/a (never sleeps)",
        "node_averaged_rounds": "best known O(log n)",
        "worst_case_rounds": "O(log n)",
    },
    "luby": {
        "node_averaged_awake": "n/a (never sleeps)",
        "worst_case_awake": "n/a (never sleeps)",
        "node_averaged_rounds": "best known O(log n)",
        "worst_case_rounds": "O(log n)",
    },
    "greedy": {
        "node_averaged_awake": "n/a (never sleeps)",
        "worst_case_awake": "n/a (never sleeps)",
        "node_averaged_rounds": "best known O(log n)",
        "worst_case_rounds": "O(log n)",
    },
    "ghaffari": {
        "node_averaged_awake": "n/a (never sleeps)",
        "worst_case_awake": "n/a (never sleeps)",
        "node_averaged_rounds": "O(log n)",
        "worst_case_rounds": "O(log n) general graphs",
    },
    "sleeping": {
        "node_averaged_awake": "O(1)",
        "worst_case_awake": "O(log n)",
        "node_averaged_rounds": "O(n^3)",
        "worst_case_rounds": "O(n^3)",
    },
    "fast-sleeping": {
        "node_averaged_awake": "O(1)",
        "worst_case_awake": "O(log n)",
        "node_averaged_rounds": "O(log^3.41 n)",
        "worst_case_rounds": "O(log^3.41 n)",
    },
}

TABLE1_MEASURES = (
    "node_averaged_awake",
    "worst_case_awake",
    "node_averaged_rounds",
    "worst_case_rounds",
)


def build_table1(
    sizes: Sequence[int] = (64, 128, 256),
    family: str = "gnp-sparse",
    *,
    plan: Optional["RunPlan"] = None,
    algorithms: Sequence[str] = (
        "luby",
        "abi",
        "greedy",
        "ghaffari",
        "sleeping",
        "fast-sleeping",
    ),
    trials: int = 3,
    seed0: int = 0,
    engine: str = "auto",
    rng: str = "pernode",
    graph_source: str = "auto",
    graph_rng: str = DEFAULT_GRAPH_RNG,
    result: str = "auto",
    n_jobs: Optional[int] = None,
) -> Table:
    """Measured Table 1: one row per (algorithm, measure), one column per n.

    Everything after ``(sizes, family)`` is keyword-only.  Pass ``plan=``
    (a :class:`repro.plan.RunPlan` carrying family + the knob
    configuration) instead of loose knobs; the table iterates
    ``algorithms`` via ``plan.replace(algorithm=...)``, and
    ``sizes``/``trials``/``seed0`` stay loose arguments (the measurement
    grid, not per-run configuration).

    Every algorithm is measured on the *same* seeded graphs (identical to
    what :func:`repro.analysis.complexity.sweep` would build for the same
    ``seed0``), constructed once per size rather than once per algorithm;
    on vectorized-friendly configurations that graph reuse plus the
    vectorized baselines is what makes the full table fast.
    ``graph_source="auto"`` samples supported families straight into the
    array view (identical seeded edge sets, no networkx object);
    ``result="auto"`` keeps vectorized trials in array form until they are
    flattened into rows.  Every algorithm in the default table has a
    vectorized engine; generator-forced runs (``engine="generators"``)
    read the adjacency dict through the arrays' lazy view.
    ``graph_rng="batched"`` measures the table on v2-sampled graphs (same
    families and sizes, different seeded edge sets -- see
    :mod:`repro.graphs.arrays`).
    """
    from ..plan import ensure_plan

    plan = ensure_plan(
        "build_table1",
        plan,
        given=dict(
            family=family,
            engine=engine,
            rng=rng,
            graph_source=graph_source,
            graph_rng=graph_rng,
            result=result,
            n_jobs=n_jobs,
        ),
        defaults=dict(
            family="gnp-sparse",
            engine="auto",
            rng="pernode",
            graph_source="auto",
            graph_rng=DEFAULT_GRAPH_RNG,
            result="auto",
            n_jobs=None,
        ),
    )
    if plan.family is None:
        raise ValueError(
            "build_table1() plan carries no family (family=None); build "
            "the plan with the graph family to measure"
        )
    family = plan.family
    source = plan.resolved_graph_source
    graph_rng = plan.graph_rng
    table = Table(
        title=(
            f"Table 1 (measured): {family} graphs, "
            f"mean over {trials} trials"
        ),
        headers=["algorithm", "measure"]
        + [f"n={n}" for n in sizes]
        + ["paper"],
    )
    rows_by_algorithm: Dict[str, List[Trial]] = {a: [] for a in algorithms}
    for n in sizes:
        seeds = trial_seeds(seed0, n, trials)
        # Prebuild the full array view once per graph: every algorithm
        # (vectorized engines directly, generator engine via the attached
        # or lazily materialized adjacency) then skips both
        # re-normalization and the per-graph edge-array construction.
        graphs = {}
        for seed in seeds:
            built = make_family(family, n, seed=seed, graph_source=source,
                                graph_rng=graph_rng)
            graphs[seed] = (
                built if isinstance(built, GraphArrays) else GraphArrays(built)
            )
        for algorithm in algorithms:
            # One base plan, per-algorithm variants: the demonstration
            # that a knob added to RunPlan reaches the table without
            # another signature change here.
            results = iter_trials(
                lambda seed: graphs[seed], seeds=seeds,
                plan=plan.replace(algorithm=algorithm),
            )
            rows_by_algorithm[algorithm].extend(
                trial_from_result(one, algorithm, family=family, seed=seed)
                for one, seed in zip(results, seeds)
            )
    for algorithm in algorithms:
        rows = rows_by_algorithm[algorithm]
        for measure in TABLE1_MEASURES:
            summary = summarize(rows, measure)
            cells = [f"{summary[n]['mean']:.1f}" for n in sizes]
            claim = PAPER_CLAIMS.get(algorithm, {}).get(measure, "")
            table.add_row(algorithm, measure, *cells, claim)
    return table

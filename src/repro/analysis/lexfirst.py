"""Corollary 1: the algorithm outputs the lexicographically-first MIS.

For **Algorithm 1** the priority of node ``v`` is its full ``K``-rank
``(X_K, ..., X_1, -1)``; Corollary 1 states the computed MIS equals the
sequential greedy MIS for decreasing ``K``-rank.

For **Algorithm 2** the decomposition down to the truncation depth follows
the same ranks, and inside each base call the greedy ordering is the random
base rank.  The combined priority is therefore ``(bits..., base_rank)``,
where nodes that never reached a base case (they were decided higher up)
carry a ``-1`` sentinel that sorts them below their base-reaching peers with
identical bits -- their relative position is immaterial because a decided
node is always dominated by (or dominates) a strictly higher-priority
neighbor.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..baselines.seq_greedy import lexicographically_first_mis
from ..sim.metrics import RunResult


def recover_priorities(result: RunResult) -> Dict[int, Tuple]:
    """Per-node greedy priorities recovered from a finished sleeping run."""
    priorities: Dict[int, Tuple] = {}
    for v, protocol in result.protocols.items():
        bits = getattr(protocol, "x_bits", None)
        if bits is None:
            raise TypeError(
                f"protocol of node {v!r} exposes no x_bits; "
                f"lex-first recovery needs SleepingMIS/FastSleepingMIS"
            )
        rank = tuple(reversed(bits))  # (X_K, ..., X_1)
        base_rank = getattr(protocol, "base_rank", None)
        if base_rank is None:
            priorities[v] = rank + (-1, -1)
        else:
            priorities[v] = rank + tuple(base_rank)
    return priorities


def reference_mis(result: RunResult) -> frozenset:
    """The sequential greedy MIS for the recovered priorities."""
    return frozenset(
        lexicographically_first_mis(result.adjacency, recover_priorities(result))
    )


def check_lexicographically_first(result: RunResult) -> bool:
    """Whether the simulated MIS equals the greedy reference exactly."""
    return result.mis == reference_mis(result)

"""Trial harness: run algorithms over graph families and collect measures.

This is the measurement loop behind every benchmark and the CLI: build a
seeded graph from a registered family, run a registered algorithm, validate
the output, and flatten the paper's four complexity measures (plus message
and energy totals) into a :class:`Trial` row.

:func:`sweep` routes through the batch runner
(:func:`repro.sim.batch.run_trials`), so sweeps pick up the vectorized
engine automatically (``engine="auto"``) and can fan trials out over
worker processes (``n_jobs=``).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence

from ..api import make_protocol_factory
from ..graphs.arrays import DEFAULT_GRAPH_RNG, make_family
from ..graphs.validation import is_maximal_independent_set
from ..sim.array_result import ArrayRunResult, resolve_result_kind
from ..sim.batch import iter_trials, make_vectorized_engine
from ..sim.energy import DEFAULT_MODEL, EnergyModel
from ..sim.metrics import RunResult
from ..sim.network import Simulator
from ..sim.rng import DEFAULT_STREAM

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..plan import RunPlan


@dataclass
class Trial:
    """One (algorithm, graph, seed) measurement."""

    algorithm: str
    family: str
    n: int
    seed: int
    node_averaged_awake: float
    worst_case_awake: int
    node_averaged_rounds: float
    worst_case_rounds: int
    total_messages: int
    total_bits: int
    total_energy: float
    valid: bool
    undecided: int


def trial_from_result(
    result: RunResult,
    algorithm: str,
    *,
    family: str = "custom",
    seed: Optional[int] = None,
    energy_model: EnergyModel = DEFAULT_MODEL,
) -> Trial:
    """Flatten a finished result into a :class:`Trial` row.

    Accepts either a legacy :class:`RunResult` or an
    :class:`~repro.sim.array_result.ArrayRunResult`; measures are
    integer-exact either way.  Validation runs against the graph recorded
    in the result (vectorized O(m) passes for array-backed results, the
    dict oracle otherwise), so rows can be built from batch-runner output
    without re-threading graphs.
    """
    if isinstance(result, ArrayRunResult):
        valid = result.is_valid_mis()
    else:
        valid = is_maximal_independent_set(result.adjacency, result.mis)
    return Trial(
        algorithm=algorithm,
        family=family,
        n=result.n,
        seed=result.seed if seed is None else seed,
        node_averaged_awake=result.node_averaged_awake_complexity,
        worst_case_awake=result.worst_case_awake_complexity,
        node_averaged_rounds=result.node_averaged_round_complexity,
        worst_case_rounds=result.worst_case_round_complexity,
        total_messages=result.total_messages,
        total_bits=result.total_bits,
        total_energy=energy_model.total_energy(result),
        valid=valid,
        undecided=len(result.undecided),
    )


def run_trial(
    graph: Any,
    algorithm: Optional[str] = None,
    *,
    plan: Optional["RunPlan"] = None,
    seed: int = 0,
    family: str = "custom",
    energy_model: EnergyModel = DEFAULT_MODEL,
    congest_bit_limit: Optional[int] = None,
    engine: str = "generators",
    rng: str = DEFAULT_STREAM,
    result: str = "legacy",
    **protocol_kwargs: Any,
) -> tuple:
    """Run one algorithm once; returns ``(result, Trial)``.

    Takes ``(graph, algorithm)`` -- the concrete-graph argument order
    shared with :func:`repro.api.solve_mis` (family-driven entry points
    like :func:`sweep` take ``(algorithm, family)``); everything else is
    keyword-only, so cross-use fails with a clear named-argument error.
    Pass ``plan=`` (a :class:`repro.plan.RunPlan`) instead of loose
    knobs; ``family`` here is the row *label* written into the
    :class:`Trial` (often not a registered family name), and
    ``energy_model`` a live model object, so both stay outside the plan.

    The default engine stays ``"generators"`` because single-trial callers
    (recursion trees, lemma analyses) usually need ``result.protocols``,
    which the vectorized engines do not populate.  ``result="arrays"``
    (or ``"auto"``) returns the struct-of-arrays
    :class:`~repro.sim.array_result.ArrayRunResult` instead of the
    per-node-dict :class:`RunResult`; the Trial row is identical.
    """
    from ..plan import ensure_plan

    if plan is None and algorithm is None:
        raise TypeError(
            "run_trial() needs an algorithm: pass it positionally "
            "(run_trial(graph, 'luby')) or inside plan="
        )
    if plan is not None and algorithm is not None and algorithm != plan.algorithm:
        raise ValueError(
            f"run_trial() got algorithm={algorithm!r} and a plan with "
            f"algorithm={plan.algorithm!r}; derive a variant with "
            f"plan.replace(algorithm=...) instead"
        )
    plan = ensure_plan(
        "run_trial",
        plan,
        given=dict(
            algorithm="fast-sleeping" if algorithm is None else algorithm,
            seed=seed,
            congest_bit_limit=congest_bit_limit,
            engine=engine,
            rng=rng,
            result=result,
            protocol_kwargs=protocol_kwargs,
        ),
        defaults=dict(
            algorithm="fast-sleeping" if algorithm is None else algorithm,
            seed=0,
            congest_bit_limit=None,
            engine="generators",
            rng=DEFAULT_STREAM,
            result="legacy",
            protocol_kwargs={},
        ),
    )
    algorithm = plan.algorithm
    protocol_kwargs = plan.protocol_dict()
    resolved = plan.resolved_engine
    result_kind = resolve_result_kind(plan.result, resolved)
    if resolved == "vectorized":
        run = make_vectorized_engine(
            graph, algorithm, seed=plan.seed, rng=plan.rng,
            result=result_kind, dtype=plan.dtype, **protocol_kwargs,
        ).run()
    else:
        factory = make_protocol_factory(algorithm, **protocol_kwargs)
        run = Simulator(
            graph, factory, seed=plan.seed,
            congest_bit_limit=plan.congest_bit_limit, rng=plan.rng,
        ).run()
        if result_kind == "arrays":
            run = ArrayRunResult.from_run_result(run, plan.dtype)
    trial = trial_from_result(
        run, algorithm, family=family, seed=plan.seed,
        energy_model=energy_model,
    )
    return run, trial


def trial_seeds(seed0: int, n: int, trials: int) -> List[int]:
    """The per-(size, trial) master seeds used by every sweep.

    One shared definition so :func:`sweep`,
    :func:`repro.analysis.tables.build_table1`, and ad-hoc repro scripts
    measure the *same* seeded graphs for the same ``seed0``.
    """
    return [seed0 + 1009 * t + n for t in range(trials)]


def sweep(
    algorithm: Optional[str] = None,
    family: Optional[str] = None,
    *,
    sizes: Sequence[int] = (),
    plan: Optional["RunPlan"] = None,
    trials: int = 3,
    seed0: int = 0,
    engine: str = "auto",
    rng: str = DEFAULT_STREAM,
    graph_source: str = "auto",
    graph_rng: str = DEFAULT_GRAPH_RNG,
    result: str = "auto",
    n_jobs: Optional[int] = None,
    energy_model: EnergyModel = DEFAULT_MODEL,
    congest_bit_limit: Optional[int] = None,
    **protocol_kwargs: Any,
) -> List[Trial]:
    """Measure ``algorithm`` on ``family`` across ``sizes``.

    Takes ``(algorithm, family)`` -- the family-driven argument order
    shared with :func:`repro.analysis.tables.build_table1` (concrete-graph
    entry points like :func:`run_trial` take ``(graph, algorithm)``);
    everything else, including ``sizes``, is keyword-only.  Pass ``plan=``
    (a :class:`repro.plan.RunPlan` carrying algorithm + family + the knob
    configuration) instead of loose knobs; ``sizes``/``trials``/``seed0``
    stay loose arguments because they are the measurement *grid*, not
    per-run configuration.

    Each (size, trial index) pair gets its own graph seed and run seed so
    repeated sweeps are reproducible yet independent across trials.  The
    trials *stream* through the batch runner
    (:func:`repro.sim.batch.iter_trials`): each result is flattened into
    its :class:`Trial` row and dropped before the next trial runs, so a
    10^4..10^5-node sweep holds one graph and one result in memory at a
    time.

    The sweep defaults to the fully array-native measurement pipeline
    wherever that changes nothing but speed: ``engine="auto"`` picks the
    vectorized engines, ``graph_source="auto"`` samples families with an
    array-native sampler straight into CSR arrays (identical seeded edge
    sets -- see :mod:`repro.graphs.arrays`), and ``result="auto"`` keeps
    vectorized-trial statistics as numpy columns instead of 10^5 per-node
    dicts.  Force ``graph_source="networkx"`` / ``result="legacy"`` to
    reproduce the classic path; ``rng="batched"`` selects the v2
    whole-array random streams (:mod:`repro.sim.rng`) and
    ``graph_rng="batched"`` the v2 vectorized graph sampling
    (different seeded graphs, versioned -- see
    :mod:`repro.graphs.arrays`); ``n_jobs`` fans the per-size seed
    batches over worker processes.
    """
    from ..plan import ensure_plan

    if plan is None and (algorithm is None or family is None):
        raise TypeError(
            "sweep() needs an algorithm and a family: pass them "
            "positionally (sweep('luby', 'gnp-sparse', sizes=...)) or "
            "inside plan="
        )
    plan = ensure_plan(
        "sweep",
        plan,
        given=dict(
            algorithm=algorithm,
            family=family,
            engine=engine,
            rng=rng,
            graph_source=graph_source,
            graph_rng=graph_rng,
            result=result,
            n_jobs=n_jobs,
            congest_bit_limit=congest_bit_limit,
            protocol_kwargs=protocol_kwargs,
        ),
        defaults=dict(
            algorithm=None,
            family=None,
            engine="auto",
            rng=DEFAULT_STREAM,
            graph_source="auto",
            graph_rng=DEFAULT_GRAPH_RNG,
            result="auto",
            n_jobs=None,
            congest_bit_limit=None,
            protocol_kwargs={},
        ),
    )
    if plan.family is None:
        raise ValueError(
            "sweep() plan carries no family (family=None); build the "
            "plan with the graph family to measure"
        )
    algorithm, family = plan.algorithm, plan.family
    source = plan.resolved_graph_source
    graph_rng = plan.graph_rng
    rows: List[Trial] = []
    for n in sizes:
        seeds = trial_seeds(seed0, n, trials)
        factory = (
            lambda seed, n=n: make_family(family, n, seed=seed,
                                          graph_source=source,
                                          graph_rng=graph_rng)
        )
        results = iter_trials(factory, seeds=seeds, plan=plan)
        rows.extend(
            trial_from_result(
                one, algorithm,
                family=family, seed=seed, energy_model=energy_model,
            )
            for one, seed in zip(results, seeds)
        )
    return rows


#: Trial fields that can be aggregated numerically.
MEASURES = (
    "node_averaged_awake",
    "worst_case_awake",
    "node_averaged_rounds",
    "worst_case_rounds",
    "total_messages",
    "total_bits",
    "total_energy",
)


def summarize(
    rows: Iterable[Trial], measure: str = "node_averaged_awake"
) -> Dict[int, Dict[str, float]]:
    """Per-``n`` mean/min/max of one measure over a list of trials."""
    if measure not in MEASURES:
        raise KeyError(f"unknown measure {measure!r}; known: {MEASURES}")
    grouped: Dict[int, List[float]] = {}
    for row in rows:
        grouped.setdefault(row.n, []).append(float(getattr(row, measure)))
    summary: Dict[int, Dict[str, float]] = {}
    for n in sorted(grouped):
        values = grouped[n]
        summary[n] = {
            "mean": statistics.fmean(values),
            "min": min(values),
            "max": max(values),
            "stdev": statistics.stdev(values) if len(values) > 1 else 0.0,
            "count": len(values),
        }
    return summary


def mean_by_size(
    rows: Iterable[Trial], measure: str = "node_averaged_awake"
) -> tuple:
    """``(sizes, means)`` arrays ready for the estimators."""
    summary = summarize(rows, measure)
    sizes = sorted(summary)
    return sizes, [summary[n]["mean"] for n in sizes]


def all_valid(rows: Iterable[Trial]) -> bool:
    """Whether every trial produced a valid MIS."""
    return all(row.valid for row in rows)


#: Column order for CSV export.
CSV_FIELDS = (
    "algorithm",
    "family",
    "n",
    "seed",
    "node_averaged_awake",
    "worst_case_awake",
    "node_averaged_rounds",
    "worst_case_rounds",
    "total_messages",
    "total_bits",
    "total_energy",
    "valid",
    "undecided",
)


def trials_to_csv(rows: Iterable[Trial]) -> str:
    """Render trials as CSV text (header + one line per trial)."""
    lines = [",".join(CSV_FIELDS)]
    for row in rows:
        lines.append(
            ",".join(str(getattr(row, field)) for field in CSV_FIELDS)
        )
    return "\n".join(lines)


def write_csv(rows: Iterable[Trial], path: str) -> None:
    """Write trials to a CSV file."""
    with open(path, "w") as handle:
        handle.write(trials_to_csv(rows) + "\n")

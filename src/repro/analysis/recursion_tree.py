"""Reconstruct and render the recursion tree (Figures 1 and 2).

Figure 1 of the paper draws the recursion tree of ``SleepingMISRecursive``
with each tree vertex labeled by two numbers: the round at which the vertex
is first reached and the round at which computation finishes there.  This
module rebuilds that tree from the call records of a real run, verifies the
(start, finish) labels against the exact schedule ``T(k)``, and renders an
ASCII version of the figure.

Only calls with at least one participant appear (empty calls leave no
records; their time window still elapses, which the schedule check accounts
for).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..sim.metrics import RunResult
from .lemmas import CallAggregate, aggregate_calls


@dataclass
class TreeNode:
    """One vertex of the recursion tree."""

    call: CallAggregate
    children: List["TreeNode"] = field(default_factory=list)

    @property
    def path(self) -> str:
        return self.call.path

    @property
    def k(self) -> int:
        return self.call.k


def build_tree(result: RunResult) -> Optional[TreeNode]:
    """The recursion tree of a finished run (``None`` for empty graphs)."""
    calls = aggregate_calls(result)
    if "" not in calls:
        return None
    nodes: Dict[str, TreeNode] = {
        path: TreeNode(call=agg) for path, agg in calls.items()
    }
    for path in sorted(nodes):
        if not path:
            continue
        parent = nodes.get(path[:-1])
        if parent is None:
            raise ValueError(
                f"call {path!r} has no parent call record -- "
                f"inconsistent instrumentation"
            )
        parent.children.append(nodes[path])
    for node in nodes.values():
        node.children.sort(key=lambda child: child.path)
    return nodes[""]


def render_tree(
    root: Optional[TreeNode],
    max_depth: Optional[int] = None,
) -> str:
    """ASCII rendering in the style of Figure 1.

    Each line shows the branch (L/R), the level ``k``, the Figure-1 style
    ``first-reached, finished`` label, and the participant count.
    """
    if root is None:
        return "(empty recursion tree)"
    lines: List[str] = []

    def visit(node: TreeNode, prefix: str, is_last: bool, depth: int) -> None:
        root = not prefix and node.path == ""
        connector = "" if root else ("`-- " if is_last else "|-- ")
        branch = node.path[-1] if node.path else "root"
        lines.append(
            f"{prefix}{connector}{branch} k={node.k} "
            f"({node.call.start_round}, {node.call.end_round}) "
            f"|U|={node.call.size}"
        )
        if max_depth is not None and depth >= max_depth:
            if node.children:
                lines.append(prefix + ("    " if is_last else "|   ") + "...")
            return
        child_prefix = prefix + ("    " if is_last else "|   ")
        if node.path == "":
            child_prefix = ""
        for i, child in enumerate(node.children):
            visit(child, child_prefix, i == len(node.children) - 1, depth + 1)

    visit(root, "", True, 0)
    return "\n".join(lines)


@dataclass
class ScheduleViolation:
    """A call whose observed duration disagrees with the schedule."""

    path: str
    k: int
    observed: int
    expected: int


def verify_schedule(
    result: RunResult, duration: Callable[[int], int]
) -> List[ScheduleViolation]:
    """Check every observed call lasted exactly ``duration(k)`` rounds.

    ``duration`` is ``schedule.call_duration`` for Algorithm 1 or
    ``lambda k: schedule.fast_call_duration(k, base_rounds)`` for
    Algorithm 2.  Returns the (hopefully empty) list of violations.
    """
    violations = []
    for agg in aggregate_calls(result).values():
        if agg.start_round is None or agg.end_round is None:
            continue
        observed = agg.end_round - agg.start_round
        expected = duration(agg.k)
        if observed != expected:
            violations.append(
                ScheduleViolation(
                    path=agg.path,
                    k=agg.k,
                    observed=observed,
                    expected=expected,
                )
            )
    return violations


def tree_stats(root: Optional[TreeNode]) -> Dict[str, float]:
    """Summary statistics of the realized recursion tree."""
    if root is None:
        return {"calls": 0, "max_depth": 0, "leaves": 0, "base_calls": 0}
    calls = 0
    leaves = 0
    base_calls = 0
    max_depth = 0

    def visit(node: TreeNode, depth: int) -> None:
        nonlocal calls, leaves, base_calls, max_depth
        calls += 1
        max_depth = max(max_depth, depth)
        if node.k == 0:
            base_calls += 1
        if not node.children:
            leaves += 1
        for child in node.children:
            visit(child, depth + 1)

    visit(root, 0)
    return {
        "calls": calls,
        "max_depth": max_depth,
        "leaves": leaves,
        "base_calls": base_calls,
    }


def base_level_participants(result: RunResult) -> int:
    """Total number of nodes that reached a ``k = 0`` call.

    For Algorithm 2 this is the quantity the proof of Lemma 12 bounds by
    ``n / log n`` in expectation.
    """
    return sum(
        agg.size
        for agg in aggregate_calls(result).values()
        if agg.k == 0
    )

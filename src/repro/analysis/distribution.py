"""Distributional properties of the awake time A_v (Section 1.2 remark).

The paper defines the node-averaged awake complexity as ``E[A]`` with
``A = (1/n) sum_v A_v`` and remarks that "one can also study other
properties of A, e.g., high probability bounds".  These helpers expose the
full empirical distribution of per-node awake rounds so experiments can
measure exactly that:

* the histogram and quantiles of ``A_v`` across nodes;
* the survival curve ``P[A_v >= t]``, whose geometric decay is what drives
  both the O(1) average (Lemma 7) and the O(log n) maximum (Lemma 9);
* concentration of the *per-run average* ``A`` across seeds.
"""

from __future__ import annotations

import statistics
from typing import Dict, Iterable, List, Sequence, Tuple

from ..sim.metrics import RunResult


def awake_values(result: RunResult) -> List[int]:
    """Per-node awake round counts, sorted ascending."""
    return sorted(s.awake_rounds for s in result.node_stats.values())


def awake_histogram(result: RunResult) -> Dict[int, int]:
    """``{awake_rounds: node count}`` for one run."""
    histogram: Dict[int, int] = {}
    for value in awake_values(result):
        histogram[value] = histogram.get(value, 0) + 1
    return histogram


def awake_quantiles(
    result: RunResult, qs: Sequence[float] = (0.5, 0.9, 0.99, 1.0)
) -> Dict[float, float]:
    """Empirical quantiles of ``A_v`` (q = 1.0 is the maximum)."""
    values = awake_values(result)
    if not values:
        return {q: 0.0 for q in qs}
    out = {}
    for q in qs:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        index = min(len(values) - 1, max(0, round(q * (len(values) - 1))))
        out[q] = float(values[index])
    return out


def survival_curve(
    results: Iterable[RunResult], thresholds: Sequence[int]
) -> List[Tuple[int, float]]:
    """Pooled ``P[A_v >= t]`` for each threshold ``t``.

    The Pruning Lemma implies a node participates in level ``i`` (and hence
    pays its 3 awake rounds there) with probability at most ``(3/4)^i``, so
    the survival curve should decay at least geometrically in t/3.
    """
    pooled: List[int] = []
    for result in results:
        pooled.extend(awake_values(result))
    if not pooled:
        return [(t, 0.0) for t in thresholds]
    total = len(pooled)
    return [
        (t, sum(1 for v in pooled if v >= t) / total) for t in thresholds
    ]


def average_concentration(
    results: Iterable[RunResult],
) -> Dict[str, float]:
    """Spread of the per-run average A across independent runs."""
    averages = [r.node_averaged_awake_complexity for r in results]
    if not averages:
        return {"mean": 0.0, "stdev": 0.0, "min": 0.0, "max": 0.0}
    return {
        "mean": statistics.fmean(averages),
        "stdev": statistics.stdev(averages) if len(averages) > 1 else 0.0,
        "min": min(averages),
        "max": max(averages),
    }


def tail_fraction(results: Iterable[RunResult], multiplier: float) -> float:
    """Pooled fraction of nodes with ``A_v > multiplier * (pooled mean)``."""
    pooled: List[int] = []
    for result in results:
        pooled.extend(awake_values(result))
    if not pooled:
        return 0.0
    mean = statistics.fmean(pooled)
    return sum(1 for v in pooled if v > multiplier * mean) / len(pooled)

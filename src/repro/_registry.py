"""Shared helper for registry lookups: helpful unknown-name errors.

Every name registry in the package (graph families, algorithms, the
array-native family mirror) used to raise a bare ``KeyError`` on a typo,
so ``family="gnp"`` surfaced as ``KeyError: 'gnp'`` with no hint that
``"gnp-sparse"`` / ``"gnp-dense"`` exist.  :func:`unknown_name_error`
is the one error path they all share now: a ``ValueError`` that names
the bad value, suggests close matches (edit distance plus prefix
matches, so ``"gnp"`` finds both gnp variants), and lists the full
registry.
"""

from __future__ import annotations

import difflib
from typing import Iterable, List, Optional


def close_name_matches(name: str, known: Iterable[str]) -> List[str]:
    """Plausible intended names for a mistyped ``name``.

    Combines :func:`difflib.get_close_matches` (typos: ``"slepeing"`` ->
    ``"sleeping"``) with prefix containment in either direction
    (truncations: ``"gnp"`` -> ``"gnp-sparse"``, ``"gnp-dense"``),
    preserving registry order for the prefix hits.
    """
    known = list(known)
    fuzzy = difflib.get_close_matches(name, known, n=3, cutoff=0.6)
    prefixed = [
        k for k in known
        if k not in fuzzy and (k.startswith(name) or name.startswith(k))
    ]
    return fuzzy + prefixed


def unknown_name_error(
    kind: str,
    name: object,
    known: Iterable[str],
    *,
    hint: Optional[str] = None,
) -> ValueError:
    """A ``ValueError`` describing an unknown registry ``name``.

    ``kind`` is the human label ("graph family", "algorithm", ...);
    ``known`` the registry's valid names; ``hint`` an optional trailing
    sentence (e.g. which knob selects a different registry).  Returned,
    not raised, so call sites read ``raise unknown_name_error(...)``.
    """
    known = sorted(known)
    parts = [f"unknown {kind} {name!r}"]
    if isinstance(name, str):
        matches = close_name_matches(name, known)
        if matches:
            parts.append(
                "did you mean " + ", ".join(repr(m) for m in matches) + "?"
            )
    parts.append(f"known: {known}")
    message = "; ".join(parts)
    if hint:
        message += f" ({hint})"
    return ValueError(message)

"""Distribution of per-node awake time A_v (beyond the O(1) mean).

Theorem 1 bounds E[A]; this example looks at the whole distribution for
Algorithm 1: the histogram of awake rounds (always multiples of 3 -- one
triple per recursion level participated in), its quantiles, and the
survival curve P[A_v >= t], which decays geometrically per level exactly as
the (3/4)^i participation bound of Lemma 7 predicts.

Run with::

    python examples/awake_distribution.py
"""

import networkx as nx

from repro import solve_mis
from repro.analysis.distribution import (
    average_concentration,
    awake_histogram,
    awake_quantiles,
    survival_curve,
)


def main() -> None:
    n = 1024
    results = []
    for seed in range(5):
        graph = nx.gnp_random_graph(n, 8.0 / n, seed=seed)
        results.append(solve_mis(graph, algorithm="sleeping", seed=seed))

    histogram = awake_histogram(results[0])
    print(f"awake-round histogram (run 0, n={n}):")
    peak = max(histogram.values())
    for rounds in sorted(histogram):
        bar = "#" * max(1, round(40 * histogram[rounds] / peak))
        print(f"  {rounds:3d} rounds | {bar} {histogram[rounds]}")

    quantiles = awake_quantiles(results[0], qs=(0.5, 0.9, 0.99, 1.0))
    print(
        f"\nquantiles: median={quantiles[0.5]:.0f}  "
        f"P90={quantiles[0.9]:.0f}  P99={quantiles[0.99]:.0f}  "
        f"max={quantiles[1.0]:.0f}  (max is the O(log n) worst case)"
    )

    print("\nsurvival curve P[A_v >= t], pooled over 5 runs:")
    for t, fraction in survival_curve(results, thresholds=[3, 6, 9, 12, 15, 21, 30]):
        print(f"  t={t:3d}: {fraction:.4f}")

    stats = average_concentration(results)
    print(
        f"\nper-run average A: mean={stats['mean']:.2f} "
        f"stdev={stats['stdev']:.2f} range=[{stats['min']:.2f}, {stats['max']:.2f}]"
        f"\n(the O(1) expectation, tightly concentrated across runs)"
    )


if __name__ == "__main__":
    main()

"""Scaling study: the headline O(1) node-averaged awake complexity.

Sweeps the sleeping algorithms and the baselines over growing graphs and
prints how each of the paper's four measures scales, together with fitted
growth models.  This is the script version of benchmarks E6--E8.

Run with::

    python examples/scaling_study.py            # quick (default sizes)
    python examples/scaling_study.py --big      # adds n=2048/4096
"""

import argparse

from repro.analysis import (
    classify_growth,
    fit_logarithmic,
    growth_factor,
    mean_by_size,
    sweep,
)
from repro.analysis.tables import Table


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--big", action="store_true", help="add larger sizes")
    parser.add_argument("--trials", type=int, default=3)
    args = parser.parse_args()

    sizes = [64, 128, 256, 512, 1024]
    if args.big:
        sizes += [2048, 4096]

    print(f"family: gnp-sparse (expected degree ~8), sizes {sizes}\n")

    table = Table(
        title="node-averaged awake complexity (paper: O(1) for sleeping algos)",
        headers=["algorithm"] + [f"n={n}" for n in sizes] + ["growth", "class"],
    )
    for algorithm in ("sleeping", "fast-sleeping", "luby", "ghaffari"):
        rows = sweep(
            algorithm, "gnp-sparse", sizes=sizes, trials=args.trials, seed0=17
        )
        ns, means = mean_by_size(rows, "node_averaged_awake")
        table.add_row(
            algorithm,
            *[f"{m:.2f}" for m in means],
            f"{growth_factor(ns, means):.2f}x",
            classify_growth(ns, means),
        )
    print(table.to_text())

    print()
    table = Table(
        title="worst-case awake complexity (paper: O(log n) for sleeping algos)",
        headers=["algorithm"] + [f"n={n}" for n in sizes] + ["log fit"],
    )
    for algorithm in ("sleeping", "fast-sleeping"):
        rows = sweep(
            algorithm, "gnp-sparse", sizes=sizes, trials=args.trials, seed0=17
        )
        ns, means = mean_by_size(rows, "worst_case_awake")
        fit = fit_logarithmic(ns, means)
        table.add_row(algorithm, *[f"{m:.1f}" for m in means], str(fit))
    print(table.to_text())

    print()
    table = Table(
        title="worst-case round complexity (Alg 1: O(n^3); Alg 2: polylog)",
        headers=["algorithm"] + [f"n={n}" for n in sizes],
    )
    for algorithm in ("sleeping", "fast-sleeping", "luby"):
        rows = sweep(algorithm, "gnp-sparse", sizes=sizes, trials=1, seed0=17)
        ns, means = mean_by_size(rows, "worst_case_rounds")
        table.add_row(algorithm, *[f"{m:.3g}" for m in means])
    print(table.to_text())


if __name__ == "__main__":
    main()

"""Baseline landscape: MIS algorithms side by side, plus the coloring contrast.

Reproduces two discussion points of the paper:

* Table 1 -- all four complexity measures for Luby / ABI / greedy /
  Ghaffari versus Algorithms 1 and 2 (measured, on the same graphs);
* Section 1.5 -- Luby's (Delta+1)-coloring *does* achieve O(1)
  node-averaged round complexity in the traditional model, while no MIS
  baseline is known to; we measure the node-averaged finish round of both
  on the same graphs.

Run with::

    python examples/baseline_comparison.py
"""

from repro.analysis.tables import Table, build_table1
from repro.baselines import LubyColoring
from repro.graphs import is_proper_coloring, make_family_graph
from repro.sim import Simulator


def coloring_versus_mis() -> None:
    sizes = [64, 256, 1024]
    table = Table(
        title=(
            "node-averaged finish round, traditional model "
            "(coloring: O(1); MIS baselines: grows)"
        ),
        headers=["algorithm"] + [f"n={n}" for n in sizes],
    )

    coloring_cells = []
    for n in sizes:
        graph = make_family_graph("gnp-dense", n, seed=n)
        result = Simulator(graph, lambda v: LubyColoring(), seed=n).run()
        colors = result.outputs
        if not is_proper_coloring(graph, colors):
            raise AssertionError("coloring invalid")
        coloring_cells.append(f"{result.node_averaged_round_complexity:.2f}")
    table.add_row("luby (D+1)-coloring", *coloring_cells)

    from repro.api import solve_mis

    for algorithm in ("luby", "ghaffari"):
        cells = []
        for n in sizes:
            graph = make_family_graph("gnp-dense", n, seed=n)
            result = solve_mis(graph, algorithm=algorithm, seed=n)
            cells.append(f"{result.node_averaged_round_complexity:.2f}")
        table.add_row(f"{algorithm} MIS", *cells)
    print(table.to_text())


def main() -> None:
    print(build_table1(sizes=(64, 128, 256), trials=2, seed0=3).to_text())
    print()
    coloring_versus_mis()


if __name__ == "__main__":
    main()

"""Reproduce Figure 1: the recursion tree with (first-reached, finished) labels.

The paper's Figure 1 shows a four-level recursion tree where every vertex is
labeled by the round it is first reached and the round its computation
finishes.  Here we run Algorithm 1 on a small graph with the recursion depth
forced to 4 (to match the figure's shape), rebuild the tree from the
execution, print it, and check every label against the exact schedule
``T(k) = 3 (2^k - 1)`` from Lemma 10.

Run with::

    python examples/recursion_tree_demo.py
"""

import networkx as nx

from repro.analysis import build_tree, render_tree, tree_stats, verify_schedule
from repro.core import SleepingMIS, schedule
from repro.graphs import assert_valid_mis
from repro.sim import Simulator


def main() -> None:
    graph = nx.gnp_random_graph(24, 0.15, seed=5)
    # Depth 4, matching the four-level tree of Figure 1.  Note: the paper's
    # w.h.p. correctness needs depth ceil(3 log2 n) (= 14 for n = 24); at a
    # forced depth of 4 the run is Monte Carlo with a noticeable failure
    # probability (adjacent nodes sharing all four coins both reach the base
    # case and both join).  Seed 1 is a succeeding run; the library's
    # validators catch the failing ones.
    simulator = Simulator(
        graph, lambda v: SleepingMIS(depth=4), seed=1
    )
    result = simulator.run()
    assert_valid_mis(graph, result.mis)

    root = build_tree(result)
    print("Recursion tree (branch, level k, (first reached, finished), |U|):\n")
    print(render_tree(root))

    print()
    stats = tree_stats(root)
    print(
        f"realized calls: {stats['calls']}, depth: {stats['max_depth']}, "
        f"leaves: {stats['leaves']}"
    )

    violations = verify_schedule(result, schedule.call_duration)
    print(f"schedule violations vs T(k) = 3(2^k - 1): {len(violations)}")
    for k in range(5):
        print(f"  T({k}) = {schedule.call_duration(k)}")
    print(
        f"\nwhole run: {result.rounds} rounds "
        f"(= T(4) = {schedule.call_duration(4)})"
    )


if __name__ == "__main__":
    main()

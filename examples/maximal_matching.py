"""Maximal matching in the sleeping model (extension of the paper).

The paper's conclusion suggests the sleeping model "can prove useful in
designing distributed algorithms for various problems".  Maximal matching
is the canonical next one: a maximal matching of G is exactly an MIS of the
line graph L(G), so the O(1) node-averaged awake guarantee carries over to
edge agents unchanged.

Run with::

    python examples/maximal_matching.py
"""

import networkx as nx

from repro.analysis.tables import Table
from repro.extensions.matching import is_maximal_matching, solve_maximal_matching


def main() -> None:
    table = Table(
        title="Maximal matching via sleeping-model MIS on L(G)",
        headers=[
            "n",
            "edges (agents)",
            "matching size",
            "valid",
            "avg awake / edge",
            "max awake",
        ],
    )
    for n in (50, 100, 200, 400):
        graph = nx.gnp_random_graph(n, 6.0 / n, seed=n)
        matching, result = solve_maximal_matching(
            graph, algorithm="fast-sleeping", seed=n
        )
        table.add_row(
            n,
            graph.number_of_edges(),
            len(matching),
            is_maximal_matching(graph, matching),
            f"{result.node_averaged_awake_complexity:.2f}",
            result.worst_case_awake_complexity,
        )
    print(table.to_text())
    print(
        "\nThe per-edge average awake time stays constant as the graph "
        "grows -- the paper's\nheadline O(1) guarantee, transplanted to a "
        "second symmetry-breaking problem."
    )


if __name__ == "__main__":
    main()

"""Sleeping vs. beeping: two energy-motivated models compared (Section 1.5).

The beeping model restricts *what* a node can say (one carrier-sense bit);
the sleeping model restricts *when* a node must listen.  Both target radio
energy, but they behave very differently: in beeping, every live node sits
through whole Theta(log n)-round contention phases awake, so its awake time
grows with n, while the sleeping MIS algorithms keep the per-node average
constant.

Run with::

    python examples/beeping_vs_sleeping.py
"""

import networkx as nx

from repro.analysis.tables import Table
from repro.api import solve_mis
from repro.extensions.beeping import BeepingMIS
from repro.graphs import assert_valid_mis
from repro.sim import Simulator


def main() -> None:
    table = Table(
        title="MIS: beeping model vs. sleeping model (G(n, 8/n))",
        headers=[
            "n",
            "beeping avg awake",
            "beeping rounds",
            "sleeping avg awake",
            "sleeping rounds",
        ],
    )
    for n in (64, 128, 256, 512):
        graph = nx.gnp_random_graph(n, 8.0 / n, seed=n)

        beeping = Simulator(graph, lambda v: BeepingMIS(), seed=n).run()
        assert_valid_mis(graph, beeping.mis)

        sleeping = solve_mis(graph, algorithm="fast-sleeping", seed=n)
        assert_valid_mis(graph, sleeping.mis)

        table.add_row(
            n,
            f"{beeping.node_averaged_awake_complexity:.1f}",
            beeping.rounds,
            f"{sleeping.node_averaged_awake_complexity:.2f}",
            sleeping.rounds,
        )
    print(table.to_text())
    print(
        "\nBeeping buys tiny messages at the cost of growing awake time;\n"
        "sleeping buys constant awake time at the cost of a longer wall\n"
        "clock.  The paper calls the models orthogonal -- combining them\n"
        "is an open direction."
    )


if __name__ == "__main__":
    main()

"""Sensor-network energy study (the paper's Section 1.1 motivation).

Random geometric graphs model ad hoc sensor deployments: nodes scattered in
the unit square, connected within radio range.  We compute an MIS (the
classic primitive for clustering / backbone election in such networks) with
the sleeping algorithms and with always-awake baselines, and account energy
with measurement-shaped weights (idle listening costs 0.84x of receiving --
the Feeney--Nilsson observation that motivates the sleeping model).

Run with::

    python examples/sensor_network_energy.py
"""

from repro.analysis.tables import Table
from repro.api import solve_mis
from repro.graphs import assert_valid_mis, random_geometric
from repro.sim.energy import DEFAULT_MODEL, IDEAL_MODEL


def main() -> None:
    n = 400
    graph = random_geometric(n, seed=13)
    print(
        f"sensor field: {n} nodes, {graph.number_of_edges()} radio links "
        f"(random geometric graph)\n"
    )

    table = Table(
        title="Energy to elect an MIS backbone (lower is better)",
        headers=[
            "algorithm",
            "avg awake rounds",
            "max awake",
            "wall-clock rounds",
            "energy (measured weights)",
            "energy (ideal: sleep=0)",
        ],
    )
    results = {}
    for algorithm in ("luby", "greedy", "ghaffari", "sleeping", "fast-sleeping"):
        result = solve_mis(graph, algorithm=algorithm, seed=13)
        assert_valid_mis(graph, result.mis)
        results[algorithm] = result
        table.add_row(
            algorithm,
            f"{result.node_averaged_awake_complexity:.2f}",
            result.worst_case_awake_complexity,
            result.worst_case_round_complexity,
            f"{DEFAULT_MODEL.total_energy(result):.0f}",
            f"{IDEAL_MODEL.total_energy(result):.0f}",
        )
    print(table.to_text())

    # Under the ideal model (sleeping is free), the sleeping algorithms'
    # energy is exactly their total awake rounds.
    fast = results["fast-sleeping"]
    luby = results["luby"]
    ratio = IDEAL_MODEL.total_energy(luby) / max(
        1.0, IDEAL_MODEL.total_energy(fast)
    )
    print()
    print(
        f"Ideal-model energy ratio Luby / Fast-SleepingMIS: {ratio:.2f}x\n"
        "\n"
        "Honest reading: at practical sizes Luby's measured constants are\n"
        "small on easy topologies, so it can still win on raw awake time;\n"
        "what the sleeping algorithms buy is a *provable* O(1) per-node\n"
        "average that stays flat at every scale (see scaling_study.py),\n"
        "where no such guarantee is known for any traditional baseline.\n"
        "Also note Algorithm 1's measured-weights row: its Theta(n^3) wall\n"
        "clock makes even a tiny residual sleep current dominate -- exactly\n"
        "the reason the paper develops Algorithm 2's polylog schedule."
    )

    # Energy is also spread evenly: no node stays awake much longer than
    # the average in the sleeping algorithms.
    energies = sorted(DEFAULT_MODEL.per_node_energy(fast).values())
    print(
        f"\nfast-sleeping per-node energy: "
        f"min={energies[0]:.1f} median={energies[len(energies) // 2]:.1f} "
        f"max={energies[-1]:.1f}"
    )


if __name__ == "__main__":
    main()

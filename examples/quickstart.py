"""Quickstart: compute an MIS in the sleeping model and read the measures.

Run with::

    python examples/quickstart.py
"""

import networkx as nx

from repro import solve_mis
from repro.graphs import assert_valid_mis


def main() -> None:
    # A sparse random network of 200 nodes.
    graph = nx.gnp_random_graph(200, 0.04, seed=7)

    # Algorithm 2 of the paper: O(1) node-averaged awake complexity,
    # polylogarithmic worst-case round complexity.
    result = solve_mis(graph, algorithm="fast-sleeping", seed=7)

    assert_valid_mis(graph, result.mis)  # independent AND maximal
    edges = graph.number_of_edges()
    avg_awake = result.node_averaged_awake_complexity
    print(f"graph                     : G(200, 0.04), {edges} edges")
    print(f"MIS size                  : {len(result.mis)}")
    print(f"node-averaged awake       : {avg_awake:.2f} rounds"
          f"  (paper: O(1))")
    print(f"worst-case awake          : {result.worst_case_awake_complexity}"
          f" rounds  (paper: O(log n))")
    print(f"worst-case rounds         : {result.worst_case_round_complexity}"
          f"  (paper: O(log^3.41 n))")
    print(f"messages sent             : {result.total_messages}")

    # Compare with Luby's algorithm, which never sleeps: every node is awake
    # for every round until it terminates.
    luby = solve_mis(graph, algorithm="luby", seed=7)
    assert_valid_mis(graph, luby.mis)
    print()
    luby_awake = luby.node_averaged_awake_complexity
    print(f"Luby node-averaged awake  : {luby_awake:.2f} rounds")
    print(f"Luby worst-case rounds    : {luby.worst_case_round_complexity}")


if __name__ == "__main__":
    main()
